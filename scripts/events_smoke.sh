#!/bin/sh
# events_smoke.sh proves the observability layer's determinism contract end
# to end through the real binaries: one simulator scenario run twice with
# -events must record byte-identical JSONL streams, and lyra-events must
# reconstruct a complete lifecycle for a job picked out of the stream.
set -eu
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

echo "== events-smoke: building lyra-sim and lyra-events"
go build -o "$dir/lyra-sim" ./cmd/lyra-sim
go build -o "$dir/lyra-events" ./cmd/lyra-events

run() {
	"$dir/lyra-sim" -scheme lyra -days 1 -training-servers 8 -inference-servers 8 \
		-seed 7 -events "$1" >/dev/null
}

echo "== events-smoke: same scenario twice"
run "$dir/a.jsonl"
run "$dir/b.jsonl"

if ! cmp -s "$dir/a.jsonl" "$dir/b.jsonl"; then
	echo "events-smoke FAILED: two identical runs recorded different streams:" >&2
	"$dir/lyra-events" -diff "$dir/a.jsonl" "$dir/b.jsonl" >&2 || true
	exit 1
fi
lines=$(wc -l < "$dir/a.jsonl")
echo "streams identical ($lines events)"

# lyra-events -diff must agree (and is itself part of the smoke).
"$dir/lyra-events" -diff "$dir/a.jsonl" "$dir/b.jsonl" >/dev/null

echo "== events-smoke: reconstructing one job's timeline"
job=$(sed -n 's/.*"kind":"job.finish","job":\([0-9][0-9]*\).*/\1/p' "$dir/a.jsonl" | head -1)
if [ -z "$job" ]; then
	echo "events-smoke FAILED: no job.finish event in the stream" >&2
	exit 1
fi
"$dir/lyra-events" -job "$job" "$dir/a.jsonl" | tail -1

echo "events-smoke OK"
