#!/bin/sh
# check.sh runs the repository's full verification gate — the same steps as
# `make check` — for environments without make.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test (invariant auditor on in every suite)"
go test ./...

echo "== go test -race ./internal/..."
go test -race ./internal/...

echo "== bench-smoke (runner memoization end to end)"
./scripts/bench_smoke.sh

echo "== events-smoke (event-stream determinism end to end)"
./scripts/events_smoke.sh

echo "== fault-smoke (fault injection + recovery end to end)"
./scripts/fault_smoke.sh

echo "== bench-scale-smoke (scale benchmarks complete and emit JSON)"
./scripts/bench_scale.sh -short /dev/null

echo "== matrix-smoke (declarative scenario specs + SLO gating end to end)"
./scripts/matrix_smoke.sh

echo "== prof-smoke (span profiler + Chrome trace end to end)"
./scripts/prof_smoke.sh

echo "== shard-smoke (sharded engine: determinism + loan-conflict path end to end)"
./scripts/shard_smoke.sh

echo "== bench-guard (perf trajectory within budget; selftest proves it can fail)"
./scripts/bench_guard.sh
./scripts/bench_guard.sh -selftest

echo "OK"
