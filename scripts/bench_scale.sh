#!/bin/sh
# bench_scale.sh runs the scale benchmarks for the indexed cluster core —
# BenchmarkBestFit (internal/place) and BenchmarkEpoch (root) at 1x and 10x
# the paper's server count — and emits the numbers as JSON, the format of
# the perf-trajectory entries in BENCH_cluster.json.
#
# Usage: bench_scale.sh [-short] [output.json]
#   -short       smoke mode: 1x scale only, one iteration each — asserts
#                the benchmarks still complete and the JSON pipeline works
#                (wired into `make check` / scripts/check.sh).
#   output.json  write JSON there instead of stdout.
set -eu
cd "$(dirname "$0")/.."

short=0
out=""
for a in "$@"; do
	case "$a" in
	-short) short=1 ;;
	*) out="$a" ;;
	esac
done

if [ "$short" = 1 ]; then
	bf_filter='BenchmarkBestFit/1x$'
	ep_filter='BenchmarkEpoch/1x$'
	bf_time=100x
	ep_time=1x
else
	bf_filter='BenchmarkBestFit'
	ep_filter='BenchmarkEpoch'
	bf_time=2s
	ep_time=3x
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
go test -run '^$' -bench "$bf_filter" -benchtime "$bf_time" ./internal/place/ >"$tmp"
go test -run '^$' -bench "$ep_filter" -benchtime "$ep_time" . >>"$tmp"

# Benchmark lines look like:
#   BenchmarkBestFit/1x-8  123456  218.0 ns/op  33 B/op  2 allocs/op
json=$(awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
}
END { printf "\n" }
' "$tmp")

if [ -z "$json" ]; then
	echo "bench_scale: no benchmark output parsed" >&2
	cat "$tmp" >&2
	exit 1
fi

doc=$(printf '{\n  "generated_by": "scripts/bench_scale.sh",\n  "results": [\n%s  ]\n}\n' "$json")

# Emitting invalid JSON should fail the gate, not poison the trajectory.
printf '%s' "$doc" | jq -e '.results | length > 0' >/dev/null

if [ -n "$out" ]; then
	printf '%s' "$doc" >"$out"
	echo "bench_scale: wrote $out"
else
	printf '%s' "$doc"
fi
