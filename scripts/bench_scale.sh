#!/bin/sh
# bench_scale.sh runs the scale benchmarks for the indexed cluster core —
# BenchmarkBestFit (internal/place) and BenchmarkEpoch (root) at 1x, 10x and
# 100x the historical 44+52-server baseline (100x = one hundred times the
# paper's 443+520-server production cluster) — and emits the numbers as
# JSON, the format of the perf-trajectory entries in BENCH_cluster.json.
#
# Usage: bench_scale.sh [-short] [output.json]
#   -short       smoke mode: BestFit at 1x plus Epoch at 1x and 100x under
#                `go test -short` (the 100x tier caps its simulated window,
#                ~30 epochs) — asserts the benchmarks still complete, the
#                100x tier stays feasible, and the JSON pipeline works
#                (wired into `make check` / scripts/check.sh).
#   output.json  write JSON there instead of stdout.
set -eu
cd "$(dirname "$0")/.."

short=0
out=""
for a in "$@"; do
	case "$a" in
	-short) short=1 ;;
	*) out="$a" ;;
	esac
done

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
if [ "$short" = 1 ]; then
	go test -run '^$' -bench 'BenchmarkBestFit/1x$' -benchtime 100x ./internal/place/ >"$tmp"
	go test -run '^$' -bench 'BenchmarkEpoch/(1x|100x|100x-faulted)$' -benchtime 1x -short . >>"$tmp"
else
	go test -run '^$' -bench BenchmarkBestFit -benchtime 2s ./internal/place/ >"$tmp"
	go test -run '^$' -bench 'BenchmarkEpoch/(1x|10x)$' -benchtime 3x . >>"$tmp"
	go test -run '^$' -bench 'BenchmarkEpoch/(100x|100x-faulted)$' -benchtime 1x . >>"$tmp"
fi

# Benchmark lines look like:
#   BenchmarkBestFit/1x-8  123456  218.0 ns/op  33 B/op  2 allocs/op
#   BenchmarkEpoch/100x-8  1  3901066278 ns/op  125840749 ns/epoch  ...
# ReportMetric inserts extra value/unit pairs, so the fields are matched by
# their unit token, never by position.
json=$(awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""; nsepoch = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		else if ($(i + 1) == "B/op") bytes = $i
		else if ($(i + 1) == "allocs/op") allocs = $i
		else if ($(i + 1) == "ns/epoch") nsepoch = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (nsepoch != "") printf ", \"ns_per_epoch\": %s", nsepoch
	printf "}"
}
END { printf "\n" }
' "$tmp")

if [ -z "$json" ]; then
	echo "bench_scale: no benchmark output parsed" >&2
	cat "$tmp" >&2
	exit 1
fi

doc=$(printf '{\n  "generated_by": "scripts/bench_scale.sh",\n  "results": [\n%s  ]\n}\n' "$json")

# Emitting invalid JSON should fail the gate, not poison the trajectory.
printf '%s' "$doc" | jq -e '.results | length > 0' >/dev/null

if [ -n "$out" ]; then
	printf '%s' "$doc" >"$out"
	echo "bench_scale: wrote $out"
else
	printf '%s' "$doc"
fi
