GO ?= go

.PHONY: all check fmt vet build test race bench bench-smoke events-smoke fault-smoke bench-scale bench-scale-smoke matrix-smoke prof-smoke shard-smoke bench-guard bench-append fuzz

all: check

# check is the default gate: formatting, vet, build, the full test suite
# (every package runs with the invariant auditor on), the race detector
# over the internal packages, and the runner-memoization, event-stream,
# fault-recovery, scale-benchmark, scenario-matrix and profiler smoke
# tests plus the perf-regression guard (and its selftest).
check: fmt vet build test race bench-smoke events-smoke fault-smoke bench-scale-smoke matrix-smoke prof-smoke shard-smoke bench-guard

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# bench-smoke proves the experiment runner's memoization end to end: one
# experiment run twice through one pool must serve the second pass from the
# cache (Hits > 0, no extra simulations executed).
bench-smoke:
	@./scripts/bench_smoke.sh

# events-smoke proves the event-stream determinism contract through the real
# binaries: one scenario run twice with -events must record byte-identical
# JSONL, and lyra-events must reconstruct a complete job lifecycle from it.
events-smoke:
	@./scripts/events_smoke.sh

# fault-smoke proves the fault layer end to end: crash-heavy simulator and
# testbed runs with -audit -events must exit 0 with zero lost jobs, report
# recoveries, and (simulator) stay byte-deterministic under faults.
fault-smoke:
	@./scripts/fault_smoke.sh

# bench-scale runs BenchmarkBestFit / BenchmarkEpoch at the 1x/10x/100x
# tiers (100x = one hundred times the paper's production cluster, a capped
# window of epochs) and prints the results as JSON — the numbers recorded
# in BENCH_cluster.json (the repo's perf trajectory for the indexed cluster
# core). Append an entry there after intentional perf-relevant changes.
bench-scale:
	@./scripts/bench_scale.sh

# bench-scale-smoke is the `check` wiring: one short run (1x plus a short
# 100x window) asserting the scale benchmarks still complete, the 100x tier
# stays feasible, and the JSON pipeline works.
bench-scale-smoke:
	@./scripts/bench_scale.sh -short /dev/null

# matrix-smoke proves the declarative scenario harness end to end: the
# shipped pack (testdata/scenarios/) dry-compiles, the smoke spec's
# scenario×scheme matrix meets its SLO assertions through the real
# lyra-matrix binary, and the same matrix with bounds tightened 100x fails
# with the violations spelled out (the gate demonstrably can fail).
matrix-smoke:
	@./scripts/matrix_smoke.sh

# prof-smoke proves the span profiler end to end through lyra-sim: -prof
# attributes >= 90% of wall time to named phases, -trace emits valid Chrome
# trace-event JSON, and turning profiling on leaves the deterministic
# -events stream byte-identical.
prof-smoke:
	@./scripts/prof_smoke.sh

# shard-smoke proves the sharded multi-cluster engine (DESIGN.md §14) end
# to end: a 4-shard audited run is byte-deterministic across two processes
# (lyra-events -diff over concurrent shard goroutines), and a saturated
# topology forces the arbitrator's loan-conflict retry path with the
# cross-shard conservation auditor on.
shard-smoke:
	@./scripts/shard_smoke.sh

# bench-guard is the perf-regression gate over BENCH_cluster.json: the
# latest recorded entry must stay within a 25% ns/epoch budget of the one
# before it, and the selftest proves a doctored 2x-slower entry fails.
bench-guard:
	@./scripts/bench_guard.sh
	@./scripts/bench_guard.sh -selftest

# bench-append records one perf-trajectory point: full scale benchmarks,
# appended to BENCH_cluster.json as a labeled dated entry, then guarded.
# Usage: make bench-append LABEL="what changed"
bench-append:
	@./scripts/bench_append.sh "$(LABEL)"

# bench runs the audit-overhead and experiment benchmarks (audit off: the
# numbers quoted in DESIGN.md come from BenchmarkEngineAudit).
bench:
	$(GO) test -run NONE -bench BenchmarkEngineAudit -benchtime 10x ./internal/sim/

# fuzz explores random start/scale/preempt/reclaim interleavings and
# incremental-vs-rescan differential workloads beyond the seed corpora that
# already run under `make test`.
fuzz:
	$(GO) test -fuzz FuzzChaosInterleavings -fuzztime 60s ./internal/sim/
	$(GO) test -fuzz FuzzIncrementalVsRescan -fuzztime 60s ./internal/sched/
