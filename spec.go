package lyra

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"lyra/internal/cluster"
	"lyra/internal/fault"
	"lyra/internal/trace"
	"lyra/internal/yamlite"
)

// SpecVersion is the current ScenarioSpec schema version. LoadSpec rejects
// other versions so a future incompatible schema change cannot silently
// misread old files.
const SpecVersion = 1

// ScenarioSpec is the declarative form of one evaluation scenario: the
// cluster shape, the synthesized workload, the workload-mix knobs, an
// optional fault plan, the scheme matrix to run over it, and the SLO
// assertions every cell must meet. Specs are written as YAML (the subset
// internal/yamlite decodes) or JSON, loaded with LoadSpec/ParseSpec, and
// compiled with CompileSpec into one CompiledCell per scheme×reclaim
// combination; internal/runner executes compiled cells as a memoized
// parallel matrix and evaluates the SLOs (cmd/lyra-matrix is the CLI).
//
// Compilation goes through Config.Normalize and Config.Validate, so a
// spec-compiled cell is byte-identical — including its content-addressed
// runner cache key — to the equivalent hand-built Config.
type ScenarioSpec struct {
	// Version must be SpecVersion.
	Version int `json:"version"`
	// Name labels the scenario in reports and cache keys do not use it.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Seed is the base random seed: it seeds the scheme configs and is the
	// default for the trace, scenario (+100), workload-mix (+200) and
	// fault seeds.
	Seed int64 `json:"seed,omitempty"`

	Cluster ClusterSpec `json:"cluster"`

	// Shards selects the sharded multi-cluster engine (DESIGN.md §14) for
	// every cell. Absent (or zero/zero) keeps the classic single-cluster
	// engine and leaves cache keys untouched.
	Shards ShardSpec `json:"shards,omitempty"`

	Trace TraceSpec `json:"trace,omitempty"`

	// Scenario optionally adapts config and trace to one of the §7.1
	// evaluation scenarios (ScenarioKind). ScenarioSeed defaults to
	// Seed+100, matching the CLI convention.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioSeed int64  `json:"scenario_seed,omitempty"`

	// Workload applies the Figures 11-16 mix knobs after scenario
	// adaptation.
	Workload MixSpec `json:"workload,omitempty"`

	// Faults is a fault-injection plan in the CLI syntax
	// ("mtbf=21600,mttr=600,straggler=0.1"); FaultSeed (default Seed)
	// seeds it when the plan itself carries no seed. A scheme entry can
	// override the plan per cell.
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`

	// Schemes is the matrix axis: one entry per scheme, each optionally
	// expanded over a reclaim-policy list.
	Schemes []SchemeSpec `json:"schemes"`

	// SLO asserts bounds on every cell's report; a scheme entry's SLO
	// replaces it for that cell.
	SLO SLOSpec `json:"slo,omitempty"`
}

// ClusterSpec sizes the two clusters (8-GPU servers unless overridden).
// RackSize and ZoneRacks shape the failure-domain topology for correlated
// outage plans (rackout=/zoneout= fault keys); zero keeps the defaults
// (8 servers per rack, 4 racks per zone).
type ClusterSpec struct {
	TrainingServers  int `json:"training_servers"`
	InferenceServers int `json:"inference_servers"`
	GPUsPerServer    int `json:"gpus_per_server,omitempty"`
	RackSize         int `json:"rack_size,omitempty"`
	ZoneRacks        int `json:"zone_racks,omitempty"`
	// TrainingGPU and InferenceGPU name the GPU generation of each tier
	// ("V100", "T4", "A100", case-insensitive). Absent keeps the paper's
	// V100/T4 pairing; mixed-generation topologies (e.g. A100 training over
	// T4 inference) change the speed and memory model job placement sees.
	TrainingGPU  string `json:"training_gpu,omitempty"`
	InferenceGPU string `json:"inference_gpu,omitempty"`
}

// ShardSpec partitions the topology into independently scheduled shards
// routed by the global capacity arbitrator. Both counts must be set
// together; zero/zero is the classic unsharded engine.
type ShardSpec struct {
	Training  int `json:"training,omitempty"`
	Inference int `json:"inference,omitempty"`
}

// TraceSpec parameterizes synthetic trace generation. Zero values fall back
// to the paper's calibration (15 days, load 0.83, 21% fungible, 5% elastic)
// with TrainingGPUs derived from the cluster spec; the fraction fields are
// pointers so an explicit 0 ("no fungible jobs") is distinguishable from
// "use the default".
type TraceSpec struct {
	Days         int      `json:"days,omitempty"`
	LoadFactor   float64  `json:"load_factor,omitempty"`
	TrainingGPUs int      `json:"training_gpus,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	FracFungible *float64 `json:"frac_fungible,omitempty"`
	FracElastic  *float64 `json:"frac_elastic,omitempty"`
	FracHetero   *float64 `json:"frac_hetero,omitempty"`
	FracCheckpt  *float64 `json:"frac_checkpoint,omitempty"`
	MaxJobGPUs   int      `json:"max_job_gpus,omitempty"`
}

// MixSpec is the post-scenario workload-mix adaptation: each set fraction
// rewrites the per-job capability flags deterministically in Seed (default
// spec Seed+200), exactly like SetHeteroFraction / SetElasticFraction /
// SetCheckpointFraction.
type MixSpec struct {
	HeteroFrac     *float64 `json:"hetero_frac,omitempty"`
	ElasticFrac    *float64 `json:"elastic_frac,omitempty"`
	CheckpointFrac *float64 `json:"checkpoint_frac,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
}

// SchemeSpec declares one scheme column of the matrix. The zero value is
// the default Lyra configuration path: scheduler defaults to "lyra" via
// Config.Normalize; elastic/loaning default to off like the Config zero
// value, so spec files state capabilities explicitly.
type SchemeSpec struct {
	// Name labels the cell (default: the scheduler kind, plus the reclaim
	// kind when Reclaims expands the entry).
	Name      string `json:"name,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	Elastic   bool   `json:"elastic,omitempty"`
	Loaning   bool   `json:"loaning,omitempty"`
	// Reclaim picks one reclaiming policy; Reclaims expands this entry
	// into one cell per listed policy (the Aryl-style scheme×reclaim
	// matrix). Setting both is an error.
	Reclaim  string   `json:"reclaim,omitempty"`
	Reclaims []string `json:"reclaims,omitempty"`

	Opportunistic    bool `json:"opportunistic,omitempty"`
	Tuned            bool `json:"tuned,omitempty"`
	NaivePlacement   bool `json:"naive_placement,omitempty"`
	ProactiveReclaim bool `json:"proactive_reclaim,omitempty"`
	InfoAgnostic     bool `json:"info_agnostic,omitempty"`

	// Degraded-mode policies (DESIGN.md §13), each mapping to the Config
	// toggle of the same name with its Normalize defaults.
	RestartBackoff       bool `json:"restart_backoff,omitempty"`
	QuarantineHysteresis bool `json:"quarantine_hysteresis,omitempty"`
	EmergencyReclaim     bool `json:"emergency_reclaim,omitempty"`

	// ScalingLoss, HeteroPenalty and TunedGain fill the ScalingModel
	// (zero HeteroPenalty keeps the Normalize defaulting rules).
	ScalingLoss   float64 `json:"scaling_loss,omitempty"`
	HeteroPenalty float64 `json:"hetero_penalty,omitempty"`
	TunedGain     float64 `json:"tuned_gain,omitempty"`

	// Headroom and the interval/overhead fields follow Config's
	// zero-means-default rules (lyra.Zero = -1 requests a literal zero).
	Headroom        float64 `json:"headroom,omitempty"`
	SchedInterval   int64   `json:"sched_interval,omitempty"`
	OrchInterval    int64   `json:"orch_interval,omitempty"`
	PreemptOverhead float64 `json:"preempt_overhead,omitempty"`
	MaxTime         float64 `json:"max_time,omitempty"`

	// Faults overrides the spec-level fault plan for this scheme's cells.
	Faults string `json:"faults,omitempty"`

	// SLO replaces the spec-level SLO for this scheme's cells.
	SLO *SLOSpec `json:"slo,omitempty"`
}

// SLOSpec asserts bounds on a cell's Report (and the harness wall time).
// Zero-valued bounds are unchecked; LostJobs is a pointer so "lost_jobs: 0"
// asserts the zero-lost-jobs invariant while an absent key asserts nothing.
type SLOSpec struct {
	QueuingMeanHours      float64 `json:"queuing_mean_hours,omitempty"`
	QueuingP99Hours       float64 `json:"queuing_p99_hours,omitempty"`
	JCTMeanHours          float64 `json:"jct_mean_hours,omitempty"`
	JCTP99Hours           float64 `json:"jct_p99_hours,omitempty"`
	LostJobs              *int    `json:"lost_jobs,omitempty"`
	MinCompletedFrac      float64 `json:"min_completed_frac,omitempty"`
	MaxPreemptionRatio    float64 `json:"max_preemption_ratio,omitempty"`
	WallTimeBudgetSeconds float64 `json:"wall_time_budget_seconds,omitempty"`
}

// Empty reports whether the SLO asserts nothing.
func (s SLOSpec) Empty() bool { return s == SLOSpec{} }

// Tighten scales every upper bound by f (lower bounds and the lost-jobs
// count are left alone). cmd/lyra-matrix -tighten uses it to prove the
// failure path of the harness: any passing matrix must fail under a
// sufficiently small f.
func (s SLOSpec) Tighten(f float64) SLOSpec {
	s.QueuingMeanHours *= f
	s.QueuingP99Hours *= f
	s.JCTMeanHours *= f
	s.JCTP99Hours *= f
	s.MaxPreemptionRatio *= f
	s.WallTimeBudgetSeconds *= f
	return s
}

// SLOViolation is one failed assertion: the bound from the spec and the
// measured value that broke it.
type SLOViolation struct {
	Assert   string  `json:"assert"`
	Bound    float64 `json:"bound"`
	Measured float64 `json:"measured"`
}

func (v SLOViolation) String() string {
	return fmt.Sprintf("%s: measured %.4g exceeds bound %.4g", v.Assert, v.Measured, v.Bound)
}

// Evaluate checks the report (and the harness wall time) against every set
// bound and returns the violations, nil when all pass. Time bounds are in
// hours to match the spec keys; Report summaries are in seconds.
func (s SLOSpec) Evaluate(rep *Report, wall time.Duration) []SLOViolation {
	var out []SLOViolation
	over := func(assert string, bound, measured float64) {
		if bound > 0 && measured > bound {
			out = append(out, SLOViolation{Assert: assert, Bound: bound, Measured: measured})
		}
	}
	over("queuing_mean_hours", s.QueuingMeanHours, rep.Queue.Mean/3600)
	over("queuing_p99_hours", s.QueuingP99Hours, rep.Queue.P99/3600)
	over("jct_mean_hours", s.JCTMeanHours, rep.JCT.Mean/3600)
	over("jct_p99_hours", s.JCTP99Hours, rep.JCT.P99/3600)
	over("max_preemption_ratio", s.MaxPreemptionRatio, rep.PreemptionRatio)
	over("wall_time_budget_seconds", s.WallTimeBudgetSeconds, wall.Seconds())
	if s.LostJobs != nil {
		if lost := rep.Total - rep.Completed; lost > *s.LostJobs {
			out = append(out, SLOViolation{Assert: "lost_jobs", Bound: float64(*s.LostJobs), Measured: float64(lost)})
		}
	}
	if s.MinCompletedFrac > 0 && rep.Total > 0 {
		if frac := float64(rep.Completed) / float64(rep.Total); frac < s.MinCompletedFrac {
			out = append(out, SLOViolation{Assert: "min_completed_frac", Bound: s.MinCompletedFrac, Measured: frac})
		}
	}
	return out
}

// FracKnob is a compiled workload-mix knob (fraction plus the seed choosing
// the jobs).
type FracKnob struct {
	Frac float64
	Seed int64
}

// CompiledCell is one scenario×scheme cell of a compiled spec: a validated,
// hand-built-equivalent Config plus the declarative trace, scenario and mix
// parameters internal/runner turns into a content-addressed runner.Spec.
type CompiledCell struct {
	Spec string // scenario name
	Cell string // scheme label within the spec

	Config Config
	Trace  TraceConfig

	Scenario     ScenarioKind
	ScenarioSeed int64

	HeteroFrac     *FracKnob
	ElasticFrac    *FracKnob
	CheckpointFrac *FracKnob

	SLO SLOSpec
}

// Label is "spec/cell", the cell's display name.
func (c CompiledCell) Label() string { return c.Spec + "/" + c.Cell }

// LoadSpec reads and parses a scenario spec file (YAML or JSON by
// content/extension). Errors carry the file path; structural problems carry
// the offending field.
func LoadSpec(path string) (*ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lyra: spec %s: %w", path, err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("lyra: spec %s: %w", path, err)
	}
	return s, nil
}

// ParseSpec parses a scenario spec document: JSON when the first
// non-space byte is '{', the YAML subset otherwise. Unknown fields are
// rejected (a typo must not silently configure nothing), and the spec is
// structurally validated; CompileSpec performs the full per-cell Config
// validation.
func ParseSpec(data []byte) (*ScenarioSpec, error) {
	var s ScenarioSpec
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, "{") {
		dec := json.NewDecoder(strings.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return nil, err
		}
	} else if err := yamlite.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if err := s.validateStructure(); err != nil {
		return nil, err
	}
	return &s, nil
}

// validateStructure checks the spec skeleton — the parts CompileSpec's
// per-cell Config.Validate cannot attribute to a spec field.
func (s *ScenarioSpec) validateStructure() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("version: got %d, this build reads version %d", s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("name: required")
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("schemes: at least one scheme entry required")
	}
	if s.Cluster.TrainingServers <= 0 {
		return fmt.Errorf("cluster.training_servers: got %d, must be positive", s.Cluster.TrainingServers)
	}
	if s.Cluster.InferenceServers < 0 {
		return fmt.Errorf("cluster.inference_servers: got %d, must be non-negative", s.Cluster.InferenceServers)
	}
	for _, g := range []struct{ field, name string }{
		{"cluster.training_gpu", s.Cluster.TrainingGPU},
		{"cluster.inference_gpu", s.Cluster.InferenceGPU},
	} {
		if g.name == "" {
			continue
		}
		if _, err := cluster.ParseGPUType(g.name); err != nil {
			return fmt.Errorf("%s: %w", g.field, err)
		}
	}
	if s.Shards.Training < 0 || s.Shards.Inference < 0 {
		return fmt.Errorf("shards: got %d/%d, counts must be non-negative", s.Shards.Training, s.Shards.Inference)
	}
	if (s.Shards.Training > 0) != (s.Shards.Inference > 0) {
		return fmt.Errorf("shards: got training=%d inference=%d, sharded topologies need at least one shard on both sides", s.Shards.Training, s.Shards.Inference)
	}
	if s.Scenario != "" && !ScenarioKind(s.Scenario).Valid() {
		return fmt.Errorf("scenario: unknown scenario %q (valid: %v)", s.Scenario, Scenarios())
	}
	for _, f := range []struct {
		field string
		v     *float64
	}{
		{"trace.frac_fungible", s.Trace.FracFungible},
		{"trace.frac_elastic", s.Trace.FracElastic},
		{"trace.frac_hetero", s.Trace.FracHetero},
		{"trace.frac_checkpoint", s.Trace.FracCheckpt},
		{"workload.hetero_frac", s.Workload.HeteroFrac},
		{"workload.elastic_frac", s.Workload.ElasticFrac},
		{"workload.checkpoint_frac", s.Workload.CheckpointFrac},
	} {
		if f.v != nil && (*f.v < 0 || *f.v > 1) {
			return fmt.Errorf("%s: got %v, must be in [0, 1]", f.field, *f.v)
		}
	}
	for i, sch := range s.Schemes {
		if sch.Reclaim != "" && len(sch.Reclaims) > 0 {
			return fmt.Errorf("schemes[%d]: reclaim and reclaims are mutually exclusive", i)
		}
	}
	return nil
}

// Compile is CompileSpec as a method.
func (s *ScenarioSpec) Compile() ([]CompiledCell, error) { return CompileSpec(s) }

// CompileSpec lowers a spec into one CompiledCell per scheme×reclaim
// combination. Every cell's Config passes Config.Validate (errors name the
// spec field path that produced the bad value), and compilation is a pure
// function of the spec — the same document always compiles to the same
// cells, which is what makes spec-driven runs memoize identically to
// hand-built ones.
func CompileSpec(s *ScenarioSpec) ([]CompiledCell, error) {
	if err := s.validateStructure(); err != nil {
		return nil, fmt.Errorf("lyra: spec %q: %w", s.Name, err)
	}

	basePlan, err := compileFaults(s.Faults, s.FaultSeed, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("lyra: spec %q: faults: %w", s.Name, err)
	}

	gen := s.compileTrace()

	scenarioSeed := s.ScenarioSeed
	if scenarioSeed == 0 {
		scenarioSeed = s.Seed + 100
	}
	mixSeed := s.Workload.Seed
	if mixSeed == 0 {
		mixSeed = s.Seed + 200
	}
	knob := func(f *float64) *FracKnob {
		if f == nil {
			return nil
		}
		return &FracKnob{Frac: *f, Seed: mixSeed}
	}

	var cells []CompiledCell
	for i, sch := range s.Schemes {
		reclaims := sch.Reclaims
		expand := len(reclaims) > 0
		if !expand {
			reclaims = []string{sch.Reclaim}
		}
		for _, rk := range reclaims {
			plan := basePlan
			if sch.Faults != "" {
				plan, err = compileFaults(sch.Faults, s.FaultSeed, s.Seed)
				if err != nil {
					return nil, fmt.Errorf("lyra: spec %q: schemes[%d].faults: %w", s.Name, i, err)
				}
			}
			trainGPU, infGPU, err := s.compileGPUs()
			if err != nil {
				return nil, fmt.Errorf("lyra: spec %q: %w", s.Name, err)
			}
			cfg := Config{
				Cluster: ClusterConfig{
					TrainingServers:  s.Cluster.TrainingServers,
					InferenceServers: s.Cluster.InferenceServers,
					GPUsPerServer:    s.Cluster.GPUsPerServer,
					RackSize:         s.Cluster.RackSize,
					ZoneRacks:        s.Cluster.ZoneRacks,
					TrainingGPU:      trainGPU,
					InferenceGPU:     infGPU,
				},
				TrainingShards:   s.Shards.Training,
				InferenceShards:  s.Shards.Inference,
				Scheduler:        SchedulerKind(sch.Scheduler),
				Elastic:          sch.Elastic,
				Loaning:          sch.Loaning,
				Reclaim:          ReclaimKind(rk),
				Opportunistic:    sch.Opportunistic,
				Tuned:            sch.Tuned,
				NaivePlacement:   sch.NaivePlacement,
				ProactiveReclaim: sch.ProactiveReclaim,
				InfoAgnostic:     sch.InfoAgnostic,

				RestartBackoff:       sch.RestartBackoff,
				QuarantineHysteresis: sch.QuarantineHysteresis,
				EmergencyReclaim:     sch.EmergencyReclaim,
				Scaling: ScalingModel{
					PerWorkerLoss: sch.ScalingLoss,
					HeteroPenalty: sch.HeteroPenalty,
					TunedGain:     sch.TunedGain,
				},
				Headroom:        sch.Headroom,
				SchedInterval:   sch.SchedInterval,
				OrchInterval:    sch.OrchInterval,
				PreemptOverhead: sch.PreemptOverhead,
				MaxTime:         sch.MaxTime,
				Faults:          plan,
				Seed:            s.Seed,
			}
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("lyra: spec %q: schemes[%d] (%s): %w", s.Name, i, cellName(sch, rk, expand), err)
			}
			slo := s.SLO
			if sch.SLO != nil {
				slo = *sch.SLO
			}
			cells = append(cells, CompiledCell{
				Spec:           s.Name,
				Cell:           cellName(sch, rk, expand),
				Config:         cfg,
				Trace:          gen,
				Scenario:       ScenarioKind(s.Scenario),
				ScenarioSeed:   scenarioSeed,
				HeteroFrac:     knob(s.Workload.HeteroFrac),
				ElasticFrac:    knob(s.Workload.ElasticFrac),
				CheckpointFrac: knob(s.Workload.CheckpointFrac),
				SLO:            slo,
			})
		}
	}
	return cells, nil
}

// cellName labels a cell: the scheme's name (default its scheduler kind),
// with the reclaim policy appended when a reclaims list expanded the entry.
func cellName(sch SchemeSpec, rk string, expanded bool) string {
	name := sch.Name
	if name == "" {
		name = sch.Scheduler
		if name == "" {
			name = string(SchedLyra)
		}
	}
	if expanded {
		name += "/" + rk
	}
	return name
}

// compileGPUs lowers the GPU generation names onto cluster.GPUType values.
// Both absent keeps the zero values (the paper's V100/T4 pairing via
// cluster.New's defaulting rule) so pre-existing specs keep their cache
// keys. An explicit training generation with inference_gpu absent keeps the
// T4 inference tier rather than falling back to the V100 zero value.
func (s *ScenarioSpec) compileGPUs() (train, inf GPUType, err error) {
	if s.Cluster.TrainingGPU != "" {
		if train, err = cluster.ParseGPUType(s.Cluster.TrainingGPU); err != nil {
			return 0, 0, fmt.Errorf("cluster.training_gpu: %w", err)
		}
	}
	if s.Cluster.InferenceGPU != "" {
		if inf, err = cluster.ParseGPUType(s.Cluster.InferenceGPU); err != nil {
			return 0, 0, fmt.Errorf("cluster.inference_gpu: %w", err)
		}
	} else if train != V100 {
		inf = T4
	}
	return train, inf, nil
}

// compileTrace lowers the trace section onto the paper-calibrated defaults,
// exactly as a hand-built DefaultTraceConfig + field overrides would.
func (s *ScenarioSpec) compileTrace() TraceConfig {
	seed := s.Trace.Seed
	if seed == 0 {
		seed = s.Seed
	}
	gen := trace.Default(seed)
	if s.Trace.Days != 0 {
		gen.Days = s.Trace.Days
	}
	if s.Trace.TrainingGPUs != 0 {
		gen.TrainingGPUs = s.Trace.TrainingGPUs
	} else {
		gpus := s.Cluster.GPUsPerServer
		if gpus == 0 {
			gpus = 8
		}
		gen.TrainingGPUs = s.Cluster.TrainingServers * gpus
	}
	if s.Trace.LoadFactor != 0 {
		gen.LoadFactor = s.Trace.LoadFactor
	}
	if s.Trace.FracFungible != nil {
		gen.FracFungible = *s.Trace.FracFungible
	}
	if s.Trace.FracElastic != nil {
		gen.FracElastic = *s.Trace.FracElastic
	}
	if s.Trace.FracHetero != nil {
		gen.FracHetero = *s.Trace.FracHetero
	}
	if s.Trace.FracCheckpt != nil {
		gen.FracCheckpoint = *s.Trace.FracCheckpt
	}
	if s.Trace.MaxJobGPUs != 0 {
		gen.MaxJobGPUs = s.Trace.MaxJobGPUs
	}
	return gen
}

// compileFaults parses a CLI-syntax fault plan and applies the spec's seed
// fallback chain (plan seed, then fault_seed, then the spec seed) — the
// same rule the CLIs use.
func compileFaults(spec string, faultSeed, seed int64) (FaultPlan, error) {
	if spec == "" {
		return FaultPlan{}, nil
	}
	p, err := fault.ParsePlan(spec)
	if err != nil {
		return FaultPlan{}, err
	}
	if p.Seed == 0 {
		p.Seed = faultSeed
	}
	if p.Seed == 0 {
		p.Seed = seed
	}
	return p, nil
}
