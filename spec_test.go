package lyra

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the spec golden files")

// TestScenarioPackCompiles keeps every shipped spec loadable: each file in
// testdata/scenarios must parse, validate and compile into at least one
// cell whose Config passes Validate.
func TestScenarioPackCompiles(t *testing.T) {
	paths, err := filepath.Glob("testdata/scenarios/*.yaml")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no pack specs found: %v", err)
	}
	for _, p := range paths {
		s, err := LoadSpec(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		cells, err := s.Compile()
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if len(cells) == 0 {
			t.Errorf("%s: compiled to no cells", p)
		}
		for _, c := range cells {
			if err := c.Config.Validate(); err != nil {
				t.Errorf("%s cell %s: %v", p, c.Label(), err)
			}
		}
	}
}

// TestSpecGoldenRoundTrip pins the smoke spec's compilation output: the
// canonical JSON of its compiled cells must be byte-stable across
// refactors. Any intentional change to spec semantics shows up as a golden
// diff (regenerate with: go test -run TestSpecGoldenRoundTrip -update).
func TestSpecGoldenRoundTrip(t *testing.T) {
	s, err := LoadSpec("testdata/scenarios/smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := "testdata/golden/smoke.cells.json"
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("compiled smoke.yaml diverged from golden %s;\nre-run with -update if the change is intentional.\ngot:\n%s", golden, got)
	}

	// Compilation must be a pure function of the spec: a second compile of
	// a freshly parsed spec is deeply identical.
	s2, err := LoadSpec("testdata/scenarios/smoke.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := s2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, cells2) {
		t.Error("two compiles of the same spec diverged")
	}
}

// TestParseSpecJSONAndYAMLAgree feeds the same document in both syntaxes
// and requires identical parsed specs.
func TestParseSpecJSONAndYAMLAgree(t *testing.T) {
	yamlDoc := `
version: 1
name: twin
seed: 3
cluster:
  training_servers: 8
  inference_servers: 4
trace:
  days: 1
  frac_elastic: 0
schemes:
  - name: a
    scheduler: lyra
    elastic: true
slo:
  lost_jobs: 0
  jct_p99_hours: 10
`
	jsonDoc := `{
  "version": 1, "name": "twin", "seed": 3,
  "cluster": {"training_servers": 8, "inference_servers": 4},
  "trace": {"days": 1, "frac_elastic": 0},
  "schemes": [{"name": "a", "scheduler": "lyra", "elastic": true}],
  "slo": {"lost_jobs": 0, "jct_p99_hours": 10}
}`
	y, err := ParseSpec([]byte(yamlDoc))
	if err != nil {
		t.Fatal(err)
	}
	j, err := ParseSpec([]byte(jsonDoc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, j) {
		t.Errorf("YAML and JSON parses diverge:\nyaml: %+v\njson: %+v", y, j)
	}
	if y.Trace.FracElastic == nil || *y.Trace.FracElastic != 0 {
		t.Error("explicit frac_elastic: 0 must parse as a set pointer, not a default")
	}
	if y.SLO.LostJobs == nil || *y.SLO.LostJobs != 0 {
		t.Error("explicit lost_jobs: 0 must parse as an assertion")
	}
}

// TestSpecErrorsNameFields asserts the bugfix satellite: structural and
// compile errors must name the spec field (path) that caused them.
func TestSpecErrorsNameFields(t *testing.T) {
	base := func() string {
		return `
version: 1
name: e
cluster:
  training_servers: 4
schemes:
  - scheduler: lyra
`
	}
	cases := []struct {
		name, doc, wantSub string
	}{
		{"version", strings.Replace(base(), "version: 1", "version: 9", 1), "version"},
		{"name", strings.Replace(base(), "name: e", "description: x", 1), "name: required"},
		{"cluster", strings.Replace(base(), "training_servers: 4", "training_servers: 0", 1), "cluster.training_servers"},
		{"scenario", base() + "scenario: bogus\n", `scenario: unknown scenario "bogus"`},
		{"frac", base() + "workload:\n  elastic_frac: 1.5\n", "workload.elastic_frac"},
		{"unknown field", strings.Replace(base(), "name: e", "nmae: e", 1), "nmae"},
		{"no schemes", strings.Replace(base(), "schemes:\n  - scheduler: lyra", "schemes: []", 1), "schemes"},
	}
	for _, c := range cases {
		_, err := ParseSpec([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}

	// Reclaim/Reclaims conflict and per-cell Config validation failures
	// carry the scheme index and cell label.
	conflict := base() + "    reclaim: lyra\n    reclaims: [lyra, scf]\n"
	if _, err := ParseSpec([]byte(conflict)); err == nil || !strings.Contains(err.Error(), "schemes[0]") {
		t.Errorf("reclaim conflict err = %v, want schemes[0]", err)
	}
	bad := strings.Replace(base(), "scheduler: lyra", "scheduler: bogus", 1)
	s, err := ParseSpec([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Compile()
	if err == nil || !strings.Contains(err.Error(), "schemes[0]") || !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("bad scheduler err = %v, want schemes[0] and the value", err)
	}

	// LoadSpec errors carry the file path.
	if _, err := LoadSpec("testdata/scenarios/does-not-exist.yaml"); err == nil ||
		!strings.Contains(err.Error(), "does-not-exist.yaml") {
		t.Errorf("missing file err = %v, want path", err)
	}
}

// TestCompileSpecDefaults pins the compilation conventions the CLIs use:
// trace GPUs derived from the cluster, scenario seed = seed+100, mix seed =
// seed+200, fault seed fallback to the spec seed.
func TestCompileSpecDefaults(t *testing.T) {
	doc := `
version: 1
name: defaults
seed: 5
cluster:
  training_servers: 4
  inference_servers: 2
scenario: basic
workload:
  elastic_frac: 0.4
faults: "mtbf=21600,mttr=600"
schemes:
  - scheduler: lyra
`
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c := cells[0]
	if c.Trace.TrainingGPUs != 4*8 {
		t.Errorf("TrainingGPUs = %d, want cluster-derived 32", c.Trace.TrainingGPUs)
	}
	if c.Trace.Seed != 5 {
		t.Errorf("trace seed = %d, want spec seed 5", c.Trace.Seed)
	}
	if c.ScenarioSeed != 105 {
		t.Errorf("scenario seed = %d, want seed+100", c.ScenarioSeed)
	}
	if c.ElasticFrac == nil || c.ElasticFrac.Seed != 205 {
		t.Errorf("mix knob = %+v, want seed+200", c.ElasticFrac)
	}
	if !c.Config.Faults.Enabled() || c.Config.Faults.Seed != 5 {
		t.Errorf("fault plan = %+v, want enabled with spec seed", c.Config.Faults)
	}
	if c.Cell != "lyra" {
		t.Errorf("default cell name = %q, want scheduler kind", c.Cell)
	}
}

// TestSpecShardsAndGPUs covers the sharded-topology and mixed-generation
// spec surface: the shards block lowers onto Config.TrainingShards /
// InferenceShards, GPU names lower onto cluster GPU types with the T4
// inference default preserved, and malformed values fail naming the field.
func TestSpecShardsAndGPUs(t *testing.T) {
	doc := `
version: 1
name: sharded
cluster:
  training_servers: 8
  inference_servers: 4
  training_gpu: a100
shards:
  training: 2
  inference: 2
schemes:
  - scheduler: lyra
    loaning: true
`
	s, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cells[0].Config
	if cfg.TrainingShards != 2 || cfg.InferenceShards != 2 {
		t.Errorf("shards = %d/%d, want 2/2", cfg.TrainingShards, cfg.InferenceShards)
	}
	if cfg.Cluster.TrainingGPU != A100 {
		t.Errorf("training GPU = %v, want A100 (case-insensitive parse)", cfg.Cluster.TrainingGPU)
	}
	if cfg.Cluster.InferenceGPU != T4 {
		t.Errorf("inference GPU = %v, want the T4 default under explicit training_gpu", cfg.Cluster.InferenceGPU)
	}

	for _, c := range []struct{ name, doc, wantSub string }{
		{"one-sided shards", strings.Replace(doc, "  inference: 2", "  inference: 0", 1), "shards"},
		{"negative shards", strings.Replace(doc, "  training: 2", "  training: -1", 1), "shards"},
		{"bad gpu", strings.Replace(doc, "training_gpu: a100", "training_gpu: H100", 1), "cluster.training_gpu"},
		{"bad inference gpu", strings.Replace(doc, "training_gpu: a100", "inference_gpu: nope", 1), "cluster.inference_gpu"},
	} {
		if _, err := ParseSpec([]byte(c.doc)); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

// TestSLOEvaluate exercises the assertion semantics directly: hour-unit
// bounds against second-unit summaries, the lost-jobs pointer, and Tighten
// scaling only upper bounds.
func TestSLOEvaluate(t *testing.T) {
	rep := &Report{Total: 100, Completed: 99}
	rep.Queue.Mean = 2 * 3600
	rep.Queue.P99 = 10 * 3600
	rep.JCT.Mean = 5 * 3600
	rep.JCT.P99 = 50 * 3600

	zero := 0
	s := SLOSpec{QueuingP99Hours: 12, JCTP99Hours: 40, LostJobs: &zero, MinCompletedFrac: 0.999}
	vs := s.Evaluate(rep, 0)
	asserts := make(map[string]bool)
	for _, v := range vs {
		asserts[v.Assert] = true
	}
	if asserts["queuing_p99_hours"] {
		t.Error("10h p99 within a 12h bound must pass")
	}
	if !asserts["jct_p99_hours"] || !asserts["lost_jobs"] || !asserts["min_completed_frac"] {
		t.Errorf("violations = %v, want jct_p99_hours, lost_jobs and min_completed_frac", vs)
	}

	if (SLOSpec{}).Evaluate(rep, 0) != nil {
		t.Error("empty SLO must assert nothing")
	}
	tight := s.Tighten(0.01)
	if tight.QueuingP99Hours != 0.12 || tight.LostJobs != s.LostJobs {
		t.Errorf("Tighten: %+v (must scale bounds, not the lost-jobs count)", tight)
	}
	if len(tight.Evaluate(rep, 0)) <= len(vs) {
		t.Error("tightened SLO must fail at least as hard")
	}
}
