package lyra

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"lyra/internal/obs"
)

// TestEventStreamDeterministicAndComplete is the tentpole acceptance test
// for the observability layer: over a ~1k-job, 6-day trace exercising
// elastic scaling, loaning and reclaiming, (a) two identical runs record
// byte-identical JSONL event streams — the determinism contract extends to
// the telemetry itself — and (b) every job's recorded lifecycle replays
// cleanly through the lifecycle state machine: finished jobs are complete
// (submit -> queue -> start -> (preempt -> queue -> start)* -> finish) and
// unfinished jobs are legal prefixes of it.
func TestEventStreamDeterministicAndComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day trace")
	}
	tcfg := DefaultTraceConfig(3)
	tcfg.Days = 6
	tcfg.TrainingGPUs = 256
	tr := GenerateTrace(tcfg)
	if len(tr.Jobs) < 1000 {
		t.Fatalf("trace has %d jobs, want >= 1000", len(tr.Jobs))
	}

	cfg := DefaultConfig()
	cfg.Cluster = ClusterConfig{TrainingServers: 32, InferenceServers: 32}
	cfg.Events = true

	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("Events enabled but the report carries no event stream")
	}
	if !bytes.Equal(a.Events, b.Events) {
		la := strings.Split(string(a.Events), "\n")
		lb := strings.Split(string(b.Events), "\n")
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("event streams diverge at line %d:\nrun1: %s\nrun2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d lines", len(la), len(lb))
	}

	events, err := obs.ReadJSONL(bytes.NewReader(a.Events))
	if err != nil {
		t.Fatal(err)
	}
	ids := obs.JobIDs(events)
	if len(ids) != len(tr.Jobs) {
		t.Errorf("stream mentions %d jobs, trace has %d", len(ids), len(tr.Jobs))
	}
	finished := 0
	for _, id := range ids {
		tl := obs.JobTimeline(events, id)
		done := false
		for _, ev := range tl {
			if ev.Kind == obs.KindJobFinish {
				done = true
			}
		}
		err := obs.ValidateLifecycle(tl)
		if done {
			finished++
			if err != nil {
				t.Errorf("finished job %d has a broken lifecycle: %v\n%s", id, err, renderTimeline(tl))
			}
		} else if err == nil || !strings.Contains(err.Error(), "incomplete") {
			t.Errorf("unfinished job %d: want a legal-but-incomplete lifecycle, got %v\n%s", id, err, renderTimeline(tl))
		}
	}
	if finished != a.Completed {
		t.Errorf("stream records %d finishes, report says %d completed", finished, a.Completed)
	}

	// The run must have exercised the decision paths the events exist to
	// explain; otherwise this test proves less than intended.
	_, counts := obs.CountByKind(events)
	for _, kind := range []obs.Kind{
		obs.KindJobPreempt, obs.KindJobScaleUp, obs.KindJobScaleDown,
		obs.KindSchedEpoch, obs.KindSchedPhase2,
		obs.KindOrchLoan, obs.KindOrchReclaim, obs.KindReclaimPlan,
		obs.KindCounters,
	} {
		if counts[kind] == 0 {
			t.Errorf("stream has no %s events", kind)
		}
	}
}

func renderTimeline(tl []obs.Event) string {
	var b strings.Builder
	for _, ev := range tl {
		b.WriteString("  " + ev.String() + "\n")
	}
	return b.String()
}

// TestEventsDoNotChangeResults mirrors TestAuditDoesNotChangeResults:
// recording is read-only, so a run with events on must report bit-identical
// results to the same run with events off.
func TestEventsDoNotChangeResults(t *testing.T) {
	tr := smallTrace(5)
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()

	cfg.Events = true
	on, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Events = false
	off, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	a, b := *on, *off
	a.Raw, b.Raw = nil, nil
	a.Events = nil // the only field allowed to differ
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("recording changed the report:\n on: %+v\noff: %+v", a, b)
	}
}
