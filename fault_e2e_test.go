package lyra

import (
	"bytes"
	"fmt"
	"testing"

	"lyra/internal/job"
	"lyra/internal/obs"
)

// TestFaultRecoveryEndToEnd is the tentpole acceptance test for the fault
// layer: a ~1k-job, 6-day trace runs under a crash-heavy plan with the
// invariant auditor on after every event (quarantine-aware conservation).
// The contract is zero lost jobs — every job is either completed, or still
// legally pending/running at the horizon; a job that vanishes from the
// books, or a violation panic from the auditor, fails the test.
func TestFaultRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day trace")
	}
	tcfg := DefaultTraceConfig(3)
	tcfg.Days = 6
	tcfg.TrainingGPUs = 256
	tr := GenerateTrace(tcfg)
	if len(tr.Jobs) < 1000 {
		t.Fatalf("trace has %d jobs, want >= 1000", len(tr.Jobs))
	}

	cfg := DefaultConfig()
	cfg.Cluster = ClusterConfig{TrainingServers: 32, InferenceServers: 32}
	cfg.Audit = true
	cfg.Faults = FaultPlan{Seed: 11, ServerMTBF: 86400, ServerMTTR: 900, StragglerFrac: 0.1}

	rep, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Recoveries == 0 {
		t.Fatalf("crashes=%d recoveries=%d, want both > 0 (64 servers, 6 days, MTBF 1 day)",
			rep.Crashes, rep.Recoveries)
	}
	// Zero lost jobs: account for every single one.
	res := rep.Raw
	completed, pending, running := 0, 0, 0
	for _, j := range res.Jobs {
		switch j.State {
		case job.Completed:
			completed++
		case job.Pending:
			pending++
		case job.Running:
			running++
		default:
			t.Fatalf("job %d in impossible state %v", j.ID, j.State)
		}
	}
	if completed+pending+running != len(tr.Jobs) {
		t.Fatalf("books lost jobs: %d completed + %d pending + %d running != %d submitted",
			completed, pending, running, len(tr.Jobs))
	}
	if completed != rep.Completed {
		t.Errorf("report says %d completed, books say %d", rep.Completed, completed)
	}
	if rep.Completed < len(tr.Jobs)*9/10 {
		t.Errorf("completed %d/%d jobs under faults, want >= 90%%", rep.Completed, len(tr.Jobs))
	}
	if rep.Preemptions == 0 {
		t.Error("crash-heavy run recorded no preemptions; the checkpoint-restart path never ran")
	}
}

// TestFaultedEventStreamDeterministic extends the event-stream determinism
// contract to faulted runs: the crash/recovery timeline is pre-generated
// from the plan seed, so two identical faulted runs record byte-identical
// JSONL — including the new fault.crash / fault.recover / job.restart
// kinds, which must all be present.
func TestFaultedEventStreamDeterministic(t *testing.T) {
	tr := smallTrace(9)
	cfg := DefaultConfig()
	cfg.Cluster = smallCluster()
	cfg.Events = true
	cfg.Audit = true
	cfg.Faults = FaultPlan{Seed: 9, ServerMTBF: 28800, ServerMTTR: 600, StragglerFrac: 0.2}

	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Events, b.Events) {
		t.Fatal("two identical faulted runs recorded different event streams")
	}
	if a.Crashes == 0 || a.Recoveries == 0 {
		t.Fatalf("crashes=%d recoveries=%d: the plan injected nothing, the test is vacuous",
			a.Crashes, a.Recoveries)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(a.Events))
	if err != nil {
		t.Fatal(err)
	}
	_, counts := obs.CountByKind(events)
	for _, kind := range []obs.Kind{obs.KindFaultCrash, obs.KindFaultRecover, obs.KindJobRestart} {
		if counts[kind] == 0 {
			t.Errorf("faulted stream has no %s events", kind)
		}
	}
	if counts[obs.KindFaultCrash] != a.Crashes {
		t.Errorf("stream records %d crashes, report says %d", counts[obs.KindFaultCrash], a.Crashes)
	}
	if counts[obs.KindFaultRecover] != a.Recoveries {
		t.Errorf("stream records %d recoveries, report says %d", counts[obs.KindFaultRecover], a.Recoveries)
	}
}

// TestDisabledFaultPlanIsIdentity is the faults-off acceptance guard: a
// plan that injects nothing — even one carrying a stray seed — must leave a
// run byte-identical to one with no plan at all, event stream included.
// Combined with the fault-free rows of the faultsweep experiment (whose
// registry output is diffed serial-vs-parallel), this pins "faults disabled
// means pre-PR behavior, exactly".
func TestDisabledFaultPlanIsIdentity(t *testing.T) {
	tr := smallTrace(5)
	base := DefaultConfig()
	base.Cluster = smallCluster()
	base.Events = true

	seedOnly := base
	seedOnly.Faults = FaultPlan{Seed: 1234}

	a, err := Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(seedOnly, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Events, b.Events) {
		t.Error("a disabled fault plan changed the event stream")
	}
	ra, rb := *a, *b
	ra.Raw, rb.Raw = nil, nil
	ra.Events, rb.Events = nil, nil
	if fmt.Sprintf("%+v", ra) != fmt.Sprintf("%+v", rb) {
		t.Errorf("a disabled fault plan changed the report:\n none: %+v\n seed: %+v", ra, rb)
	}
	if b.Crashes != 0 || b.Recoveries != 0 {
		t.Errorf("disabled plan injected faults: crashes=%d recoveries=%d", b.Crashes, b.Recoveries)
	}
}

// TestCrashStormEndToEnd is the tentpole acceptance test for correlated
// failure domains: a rack outage repeatedly removes 25% of training
// capacity (32 training servers at the default rack size of 8) mid-run,
// with the always-on auditor, under degraded mode both off and on. The
// contract: zero lost jobs in both modes, byte-identical streams across
// re-execution, rack outages visible as fault.domain markers, and restart
// backoff bounding how many gangs restart in the same scheduling instant.
func TestCrashStormEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-day trace")
	}
	tcfg := DefaultTraceConfig(7)
	tcfg.Days = 3
	tcfg.TrainingGPUs = 256
	tr := GenerateTrace(tcfg)

	base := DefaultConfig()
	base.Cluster = ClusterConfig{TrainingServers: 32, InferenceServers: 32}
	base.Audit = true
	base.Events = true
	base.Faults = FaultPlan{Seed: 11, ServerMTBF: 86400, ServerMTTR: 600,
		RackOutMTBF: 43200, RackMTTR: 900}

	degraded := base
	degraded.RestartBackoff = true
	degraded.QuarantineHysteresis = true
	degraded.EmergencyReclaim = true

	run := func(cfg Config) *Report {
		rep, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		// Zero lost jobs: every submitted job is completed or still
		// legally on the books at the horizon.
		completed, alive := 0, 0
		for _, j := range rep.Raw.Jobs {
			switch j.State {
			case job.Completed:
				completed++
			case job.Pending, job.Running:
				alive++
			default:
				t.Fatalf("job %d in impossible state %v", j.ID, j.State)
			}
		}
		if completed+alive != len(tr.Jobs) {
			t.Fatalf("books lost jobs: %d completed + %d alive != %d submitted",
				completed, alive, len(tr.Jobs))
		}
		if rep.LostCapacityGPUSec <= 0 {
			t.Fatalf("rack outages lost no capacity (LostCapacityGPUSec=%g): the storm never hit",
				rep.LostCapacityGPUSec)
		}
		return rep
	}

	plain := run(base)
	deg := run(degraded)

	// Re-execution determinism, degraded mode on: the full degraded
	// machinery (backoff holds, hold-downs, emergency reclaims) is inside
	// the byte-determinism contract.
	deg2 := run(degraded)
	if !bytes.Equal(deg.Events, deg2.Events) {
		t.Fatal("two identical degraded crash-storm runs recorded different event streams")
	}

	// maxResumes: the most gangs restarting at one timestamp; resumeAt
	// maps cause=resume job.start events by instant.
	countKinds := func(rep *Report) (map[obs.Kind]int, float64) {
		events, err := obs.ReadJSONL(bytes.NewReader(rep.Events))
		if err != nil {
			t.Fatal(err)
		}
		_, counts := obs.CountByKind(events)
		resumeAt := map[float64]int{}
		max := 0
		for _, ev := range events {
			if ev.Kind == obs.KindJobStart && ev.Cause == "resume" {
				resumeAt[ev.T]++
				if resumeAt[ev.T] > max {
					max = resumeAt[ev.T]
				}
			}
		}
		return counts, float64(max)
	}
	plainCounts, plainMax := countKinds(plain)
	degCounts, degMax := countKinds(deg)

	// Both modes see the same pre-generated outage timeline.
	for _, rep := range []map[obs.Kind]int{plainCounts, degCounts} {
		if rep[obs.KindFaultDomain] == 0 {
			t.Fatal("no fault.domain markers in a rack-outage stream")
		}
	}
	// Degraded machinery fires only when switched on.
	if plainCounts[obs.KindJobBackoff] != 0 {
		t.Errorf("plain run recorded %d job.backoff events, want 0", plainCounts[obs.KindJobBackoff])
	}
	if degCounts[obs.KindJobBackoff] == 0 {
		t.Error("degraded run recorded no job.backoff events under a crash storm")
	}
	// Backoff spreads post-outage restarts out in time: the worst
	// same-instant restart burst must not exceed the plain run's.
	if degMax > plainMax {
		t.Errorf("degraded restart burst %v exceeds plain %v; backoff made storms worse", degMax, plainMax)
	}
}
