package lyra

import (
	"lyra/internal/arbiter"
	"lyra/internal/cluster"
	"lyra/internal/inference"
	"lyra/internal/obs"
	"lyra/internal/orchestrator"
	"lyra/internal/prof"
	"lyra/internal/sim"
)

// splitServers deals total servers across n shards: every shard gets an
// even share, with the remainder going to the lowest-ID shards. The split
// is positional — shard i's servers are the next counts[i] IDs of the
// global sequence — so shard ID ranges are contiguous and a 1+1 topology
// reproduces the unsharded ID layout exactly.
func splitServers(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
		if i < total%n {
			out[i]++
		}
	}
	return out
}

// runSharded is the sharded counterpart of RunProfiled's engine setup: it
// carves the configured cluster into per-shard indexed clusters over
// contiguous global ID ranges (training shards first, then inference
// shards, matching the unsharded layout), instantiates one scheduler per
// training shard and one loan targeter per inference shard, wires the
// global capacity arbitrator, and runs the sharded engine.
func runSharded(cfg Config, tr *Trace, rec *obs.Recorder, p *prof.Profiler, prep prof.Span) *sim.Result {
	cc := cfg.Cluster
	if cc.GPUsPerServer == 0 {
		cc.GPUsPerServer = cluster.DefaultGPUsPerServer
	}
	// The parent resolves the GPU-type default (V100 training implies T4
	// inference) once, then passes both types to every shard explicitly,
	// so a training-only shard cluster cannot re-trigger the rule.
	if cc.TrainingGPU == cluster.V100 && cc.InferenceGPU == cluster.V100 {
		cc.InferenceGPU = cluster.T4
	}

	// Reference topology of the full unsharded shape: fault timelines key
	// their per-server draws on global server IDs and domain streams on
	// this topology's rack/zone indexes, so a sharded run draws the exact
	// fault schedule the unsharded engine would.
	refTopo := cluster.New(cfg.Cluster)

	trainCounts := splitServers(cc.TrainingServers, cfg.TrainingShards)
	infCounts := splitServers(cc.InferenceServers, cfg.InferenceShards)
	firstID := 0
	trainCls := make([]*cluster.Cluster, 0, cfg.TrainingShards)
	infCls := make([]*cluster.Cluster, 0, cfg.InferenceShards)
	for i, cnt := range trainCounts {
		trainCls = append(trainCls, cluster.New(cluster.Config{
			TrainingServers: cnt, GPUsPerServer: cc.GPUsPerServer,
			TrainingGPU: cc.TrainingGPU, InferenceGPU: cc.InferenceGPU,
			RackSize: cc.RackSize, ZoneRacks: cc.ZoneRacks,
			FirstID: firstID, Shard: i,
		}))
		firstID += cnt
	}
	for m, cnt := range infCounts {
		infCls = append(infCls, cluster.New(cluster.Config{
			InferenceServers: cnt, GPUsPerServer: cc.GPUsPerServer,
			TrainingGPU: cc.TrainingGPU, InferenceGPU: cc.InferenceGPU,
			RackSize: cc.RackSize, ZoneRacks: cc.ZoneRacks,
			FirstID: firstID, Shard: cfg.TrainingShards + m,
		}))
		firstID += cnt
	}

	// One scheduler instance per training shard: each runs over purely
	// local shard state, which is what makes the concurrent epoch safe.
	scheds := make([]sim.Scheduler, cfg.TrainingShards)
	for n := range scheds {
		scheds[n] = schedulerRegistry[cfg.Scheduler](cfg)
	}

	// Per-inference-shard utilization series and loan targeters. Shard 0
	// keeps the unsharded seed (Seed+13, and Seed+19 for the forecaster)
	// so a 1+1 topology sees the exact series a single-cluster run would;
	// higher shards get salted, decorrelated streams.
	targets := make([]orchestrator.LoanTargeter, cfg.InferenceShards)
	infUtil := make([]func(int64) float64, cfg.InferenceShards)
	for m := range targets {
		util := inference.GenerateUtilization(inference.DefaultUtilizationConfig(cfg.Seed+13+int64(101*m)), tr.Horizon, 300)
		is := inference.NewScheduler(util, infCounts[m], cfg.Headroom)
		infUtil[m] = is.UtilizationAt
		var t orchestrator.LoanTargeter = is
		if cfg.ProactiveReclaim {
			t = orchestrator.NewForecaster(is, cfg.Seed+19+int64(101*m))
		}
		targets[m] = t
	}

	// The arbiter always routes; it only brokers loans when loaning is on
	// (Orchestrate gates the epoch, mirroring the single-path nil
	// orchestrator).
	arb := arbiter.New(nil, nil, scheds[0].Less)
	if cfg.Loaning {
		arb.Targets = targets
		arb.Policy = reclaimRegistry[cfg.Reclaim](cfg)
		arb.IncludeElasticDemand = cfg.Elastic && cfg.Scheduler != SchedFIFO
		arb.LoanOnlyDemand = cfg.Opportunistic
		arb.EmergencyReclaim = cfg.EmergencyReclaim
	}

	preempt := cfg.PreemptOverhead
	if preempt == 0 {
		preempt = -1
	}
	simCfg := sim.Config{
		SchedInterval:   cfg.SchedInterval,
		OrchInterval:    cfg.OrchInterval,
		MaxTime:         cfg.MaxTime,
		PreemptOverhead: preempt,
		Scaling:         cfg.Scaling,
		Audit:           cfg.Audit,
		Obs:             rec,
	}
	if cfg.Faults.Enabled() {
		fp := cfg.Faults
		simCfg.Faults = &fp
	}
	if cfg.RestartBackoff {
		simCfg.BackoffBase = cfg.BackoffBase
		simCfg.BackoffCap = cfg.BackoffCap
	}
	if cfg.QuarantineHysteresis {
		simCfg.HystCrashes = cfg.HystCrashes
		simCfg.HystWindow = cfg.HystWindow
		simCfg.HystHold = cfg.HystHold
	}
	simCfg.Prof = p

	eng := sim.NewSharded(sim.ShardedConfig{
		Train: trainCls, Inf: infCls, Scheds: scheds, Arbiter: arb,
		Orchestrate: cfg.Loaning, RefTopo: refTopo, InfUtil: infUtil,
	}, tr.Jobs, tr.Horizon, simCfg)
	prep.End()
	sp := p.Start("sim")
	res := eng.Run()
	sp.End()
	return res
}
