package lyra_test

// Scale benchmarks for the indexed cluster core: BenchmarkEpoch drives the
// full Lyra scheduler (epoch loop, placement, loaning) over a one-day trace
// at three scales. Together with BenchmarkBestFit (internal/place) these
// are the perf-trajectory points recorded in BENCH_cluster.json;
// `make bench-scale` regenerates them.

import (
	"testing"

	"lyra"
)

// BenchmarkEpoch runs one simulation per iteration and reports ns/epoch —
// wall time per scheduling epoch, the number the dirty-set scheduling layer
// is accountable for. The 1x and 10x tiers are historical (44+52 and
// 440+520 servers, one tenth and one times the paper's production cluster)
// and run to completion. The 100x tier is one hundred times the paper's
// 443+520-server production cluster — 44,300 training plus 52,000 inference
// servers, ~770k GPUs, with the offered load calibrated to its 354,400
// training GPUs — far too large to drain, so MaxTime caps it at a fixed
// window of simulated epochs; the target is sub-second per epoch.
func BenchmarkEpoch(b *testing.B) {
	tiers := []struct {
		name                 string
		training, inference  int
		traceGPUs            int
		maxTime, maxTimeShrt float64
		faulted              bool
	}{
		{"1x", 44, 52, 352, 0, 0, false},
		{"10x", 440, 520, 3520, 0, 0, false},
		{"100x", 44300, 52000, 354400, 7200, 1800, false},
		// The faulted tier layers a crash-heavy correlated plan plus the
		// degraded-mode policies over the same 100x window: the fault
		// timeline is pre-generated, so the marginal cost per epoch is the
		// crash/recover/backoff event handling the guard budget covers.
		{"100x-faulted", 44300, 52000, 354400, 7200, 1800, true},
	}
	for _, tier := range tiers {
		b.Run(tier.name, func(b *testing.B) {
			maxTime := tier.maxTime
			if testing.Short() && tier.maxTimeShrt > 0 {
				maxTime = tier.maxTimeShrt
			}
			tcfg := lyra.DefaultTraceConfig(1)
			tcfg.Days = 1
			tcfg.TrainingGPUs = tier.traceGPUs
			tr := lyra.GenerateTrace(tcfg)
			cfg := lyra.DefaultConfig()
			cfg.Cluster = lyra.ClusterConfig{
				TrainingServers:  tier.training,
				InferenceServers: tier.inference,
			}
			cfg.MaxTime = maxTime
			if tier.faulted {
				cfg.Faults = lyra.FaultPlan{Seed: 3, ServerMTBF: 86400, ServerMTTR: 600,
					RackOutMTBF: 43200, RackMTTR: 900}
				cfg.RestartBackoff = true
				cfg.QuarantineHysteresis = true
				cfg.EmergencyReclaim = true
			}
			b.ReportAllocs()
			b.ResetTimer()
			var epochs int64
			for i := 0; i < b.N; i++ {
				rep, err := lyra.Run(cfg, tr)
				if err != nil {
					b.Fatal(err)
				}
				epochs += rep.Raw.SchedEpochs
			}
			if epochs > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(epochs), "ns/epoch")
			}
		})
	}
}
