package lyra_test

// Scale benchmarks for the indexed cluster core: BenchmarkEpoch drives the
// full Lyra scheduler (epoch loop, placement, loaning) over a one-day trace
// at 1x and 10x server/job counts. Together with BenchmarkBestFit
// (internal/place) these are the perf-trajectory points recorded in
// BENCH_cluster.json; `make bench-scale` regenerates them.

import (
	"fmt"
	"testing"

	"lyra"
)

// BenchmarkEpoch runs one complete simulation per iteration. The 1x point
// is a 44+52-server cluster with a trace sized to its training GPUs; the
// 10x point multiplies both servers and trace load by ten, so the epoch
// loop faces 10x the jobs over 10x the servers.
func BenchmarkEpoch(b *testing.B) {
	for _, scale := range []int{1, 10} {
		b.Run(fmt.Sprintf("%dx", scale), func(b *testing.B) {
			tcfg := lyra.DefaultTraceConfig(1)
			tcfg.Days = 1
			tcfg.TrainingGPUs = 352 * scale
			tr := lyra.GenerateTrace(tcfg)
			cfg := lyra.DefaultConfig()
			cfg.Cluster = lyra.ClusterConfig{
				TrainingServers:  44 * scale,
				InferenceServers: 52 * scale,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lyra.Run(cfg, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
