// Capacity loaning walk-through: compare the reclaiming policies of §4
// (Lyra's knapsack-based heuristic vs Random and smallest-count-first) on
// the same diurnal workload, and show where the loaning gains come from —
// the on-loan server usage and the queuing statistics of jobs that ran on
// loaned servers (Table 7 / Figures 9-10 territory).
package main

import (
	"fmt"
	"log"

	"lyra"
)

func main() {
	traceCfg := lyra.DefaultTraceConfig(7)
	traceCfg.Days = 3
	traceCfg.TrainingGPUs = 48 * 8
	workload := lyra.GenerateTrace(traceCfg)
	clusterCfg := lyra.ClusterConfig{TrainingServers: 48, InferenceServers: 56}

	fmt.Printf("workload: %d jobs; loaning only (elastic scaling disabled, §7.3)\n\n", len(workload.Jobs))
	fmt.Printf("%-8s %10s %10s %12s %12s %12s\n",
		"reclaim", "q_mean(s)", "jct_mean(s)", "preemptions", "collateral", "onloan_use")

	for _, policy := range []lyra.ReclaimKind{lyra.ReclaimRandom, lyra.ReclaimSCF, lyra.ReclaimLyra} {
		cfg := lyra.DefaultConfig()
		cfg.Cluster = clusterCfg
		cfg.Elastic = false // isolate capacity loaning
		cfg.Reclaim = policy
		rep, err := lyra.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %10.0f %10.0f %11.1f%% %11.1f%% %11.2f\n",
			policy, rep.Queue.Mean, rep.JCT.Mean,
			100*rep.PreemptionRatio, 100*rep.CollateralDamage, rep.OnLoanUsage)
	}

	// Dig into the winners: who benefited from the loaned servers?
	cfg := lyra.DefaultConfig()
	cfg.Cluster = clusterCfg
	cfg.Elastic = false
	rep, err := lyra.Run(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njobs that ran on on-loan servers: %d\n", rep.OnLoanQueue.N)
	fmt.Printf("  their queuing: mean=%.0fs median=%.0fs p95=%.0fs\n",
		rep.OnLoanQueue.Mean, rep.OnLoanQueue.P50, rep.OnLoanQueue.P95)
	fmt.Printf("  their JCT:     mean=%.0fs median=%.0fs p95=%.0fs\n",
		rep.OnLoanJCT.Mean, rep.OnLoanJCT.P50, rep.OnLoanJCT.P95)
	fmt.Printf("  reclaim demand satisfied by flexible groups alone: %.1f%%\n", 100*rep.FlexSatisfiedShare)
}
