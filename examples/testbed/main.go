// Testbed example: drive the prototype runtime with a handful of jobs and
// watch the moving parts — containers launching with latency, an elastic
// job's controller coordinating worker joins and departures, the
// orchestrator loaning and reclaiming servers through the whitelist API.
package main

import (
	"fmt"

	"lyra/internal/cluster"
	"lyra/internal/inference"
	"lyra/internal/job"
	"lyra/internal/orchestrator"
	"lyra/internal/reclaim"
	"lyra/internal/sched"
	"lyra/internal/testbed"
	"lyra/internal/trace"
)

func main() {
	workload := trace.GenerateTestbed(11, 40)
	fmt.Printf("testbed workload: %d jobs over an 8-hour window (accelerated)\n", len(workload.Jobs))

	cfg := testbed.Config{
		Cluster: cluster.TestbedConfig(), // 4x V100 + 4x T4 servers, 64 GPUs
		Speedup: 6000,
		Seed:    11,
	}
	scheduler := sched.NewLyra()
	tb := testbed.New(cfg, workload, scheduler,
		func(less func(a, b *job.Job) bool, inf *inference.Scheduler) *orchestrator.Orchestrator {
			return orchestrator.New(inf, reclaim.Lyra{}, less)
		})

	res := tb.Run(workload.Horizon)

	fmt.Printf("\ncompleted %d/%d jobs\n", res.Completed, res.Total)
	fmt.Printf("queuing: mean=%.0fs p95=%.0fs   JCT: mean=%.0fs p95=%.0fs\n",
		res.Queue.Mean, res.Queue.P95, res.JCT.Mean, res.JCT.P95)
	fmt.Printf("containers: %d launched, %d killed (scale-ins and reclaims)\n",
		res.ContainersLaunched, res.ContainersKilled)
	fmt.Printf("elastic scaling operations: %d; worker joins: %d\n", res.ScalingOps, res.WorkerJoins)
	fmt.Printf("orchestrator: %d reclaim operations, %d preemptions (%.1f%%)\n",
		res.ReclaimOps, res.Preemptions, 100*res.PreemptionRatio)
	lyraWL, infWL := tb.Whitelists()
	fmt.Printf("final whitelists: lyra controls %d servers, inference %d\n", lyraWL.Len(), infWL.Len())
}
