// Predictor example: train the §6 LSTM on a synthetic inference-utilization
// trace (window 10, two hidden layers, Adam, MSE — the paper's exact
// setup), evaluate its next-5-minute forecasts, and show how proactive
// reclaiming built on it trims preemptions relative to reactive reclaiming.
package main

import (
	"fmt"
	"log"

	"lyra"
	"lyra/internal/inference"
	"lyra/internal/predict"
)

func main() {
	// Six days of 5-minute samples: five for training (1,440 points, like
	// the paper), one held out.
	series := inference.GenerateUtilization(inference.DefaultUtilizationConfig(5), 6*86400, 300)
	day := 86400 / 300
	train, test := series.Values[:5*day], series.Values[5*day:]

	cfg := predict.DefaultLSTMConfig(3)
	cfg.LR = 0.001
	lstm := predict.NewLSTM(cfg)
	fmt.Printf("training the LSTM on %d samples (5 days of 5-minute usage)...\n", len(train))
	trainMSE := lstm.Fit(train, 12)
	testMSE := lstm.Evaluate(test)
	fmt.Printf("  final train MSE %.5f, held-out next-step MSE %.5f (paper reports 0.00048)\n\n", trainMSE, testMSE)

	fmt.Println("sample forecasts on the held-out day:")
	for i := 0; i+11 < len(test); i += 36 { // every 3 hours
		window := test[i : i+10]
		pred := lstm.Predict(window)
		fmt.Printf("  t+5min: predicted %.3f, actual %.3f\n", pred, test[i+10])
	}

	// Proactive vs reactive reclaiming on a small workload.
	traceCfg := lyra.DefaultTraceConfig(4)
	traceCfg.Days = 2
	traceCfg.TrainingGPUs = 32 * 8
	workload := lyra.GenerateTrace(traceCfg)
	clusterCfg := lyra.ClusterConfig{TrainingServers: 32, InferenceServers: 40}

	fmt.Printf("\nreactive vs predictor-driven reclaiming (loaning-only Lyra, %d jobs):\n", len(workload.Jobs))
	for _, proactive := range []bool{false, true} {
		cfg := lyra.DefaultConfig()
		cfg.Cluster = clusterCfg
		cfg.Elastic = false
		cfg.ProactiveReclaim = proactive
		rep, err := lyra.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		mode := "reactive "
		if proactive {
			mode = "proactive"
		}
		fmt.Printf("  %s: preemptions=%d (%.2f%%), q_mean=%.0fs, on-loan usage=%.2f\n",
			mode, rep.Preemptions, 100*rep.PreemptionRatio, rep.Queue.Mean, rep.OnLoanUsage)
	}
}
