// Quickstart: synthesize a small production-like trace, replay it under
// the FIFO baseline and under Lyra (capacity loaning + elastic scaling),
// and print the comparison the paper's headline numbers are about.
package main

import (
	"fmt"
	"log"

	"lyra"
)

func main() {
	// A 2-day workload calibrated against a 32-server (256-GPU) training
	// cluster, with a 32-server inference cluster available for loaning.
	traceCfg := lyra.DefaultTraceConfig(42)
	traceCfg.Days = 2
	traceCfg.TrainingGPUs = 32 * 8
	workload := lyra.GenerateTrace(traceCfg)
	fmt.Printf("workload: %d jobs over %d days\n\n", len(workload.Jobs), traceCfg.Days)

	cluster := lyra.ClusterConfig{TrainingServers: 32, InferenceServers: 32}

	baseline := lyra.BaselineConfig()
	baseline.Cluster = cluster
	baseRep, err := lyra.Run(baseline, workload)
	if err != nil {
		log.Fatal(err)
	}

	full := lyra.DefaultConfig() // SJF+MCKP scheduling, loaning, Lyra reclaiming
	full.Cluster = cluster
	lyraRep, err := lyra.Run(full, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "", "Baseline", "Lyra")
	row := func(name string, b, l float64, unit string) {
		fmt.Printf("%-22s %11.0f%s %11.0f%s\n", name, b, unit, l, unit)
	}
	row("mean queuing time", baseRep.Queue.Mean, lyraRep.Queue.Mean, "s")
	row("p95 queuing time", baseRep.Queue.P95, lyraRep.Queue.P95, "s")
	row("mean JCT", baseRep.JCT.Mean, lyraRep.JCT.Mean, "s")
	row("p95 JCT", baseRep.JCT.P95, lyraRep.JCT.P95, "s")
	fmt.Printf("%-22s %11.2f  %11.2f\n", "training-cluster usage", baseRep.TrainUsage, lyraRep.TrainUsage)
	fmt.Printf("%-22s %11.2f  %11.2f\n", "combined usage", baseRep.OverallUsage, lyraRep.OverallUsage)
	fmt.Printf("\nLyra reductions: %.2fx queuing, %.2fx JCT; %d jobs ran on loaned servers\n",
		baseRep.Queue.Mean/lyraRep.Queue.Mean,
		baseRep.JCT.Mean/lyraRep.JCT.Mean,
		lyraRep.OnLoanQueue.N)
}
