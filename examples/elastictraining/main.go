// Elastic scheduling deep dive: reproduces the paper's §5 worked examples
// on the public API — why classic SJF breaks with elastic jobs (Tables
// 2-4), how the flexible demand becomes a multiple-choice knapsack (Figure
// 6), and how the elastic schedulers compare on a real workload.
package main

import (
	"fmt"
	"log"

	"lyra"
	"lyra/internal/alloc"
	"lyra/internal/job"
)

func main() {
	workedExamples()
	schedulerComparison()
}

func workedExamples() {
	// Table 2's jobs: A completes in 50 s with its max 6 workers, B in
	// 20 s with its max 6; both need at least 2 workers.
	a := job.New(1, 0, job.Generic, 1, 2, 6, 50)
	a.Elastic = true
	b := job.New(2, 0, job.Generic, 1, 2, 6, 20)
	b.Elastic = true

	fmt.Println("Table 2/3: running time is inversely proportional to workers:")
	for _, w := range []int{2, 4, 6} {
		fmt.Printf("  job A with %d workers runs %5.1f s; job B runs %5.1f s\n",
			w, a.RuntimeAt(w, job.Linear), b.RuntimeAt(w, job.Linear))
	}

	// Figure 6: the flexible demand as knapsack items.
	a4 := job.New(1, 0, job.Generic, 2, 2, 3, 100) // Table 4's job A, 2-GPU workers
	a4.Elastic = true
	fmt.Println("\nFigure 6: JCT-reduction values of extra workers (the MCKP items):")
	fmt.Printf("  job A +1 worker (2 GPUs): %.0f s reduction\n", alloc.JCTReduction(a4, 1, job.Linear))
	for k := 1; k <= 4; k++ {
		fmt.Printf("  job B +%d worker(s) (%d GPU): %.0f s reduction\n",
			k, k, alloc.JCTReduction(b, k, job.Linear))
	}

	// Phase 2 solves the MCKP: with 4 spare GPUs the best move is A+1
	// (value 50) plus B+2 (value 30).
	got := alloc.Phase2([]*job.Job{a4, b}, 4, job.Linear, alloc.Tuning{}, nil)
	fmt.Println("\nPhase-2 MCKP decision with 4 spare GPUs:")
	for _, e := range got {
		fmt.Printf("  job %d gets %d extra worker(s)\n", e.ID, e.Extra)
	}
}

func schedulerComparison() {
	traceCfg := lyra.DefaultTraceConfig(3)
	traceCfg.Days = 2
	traceCfg.TrainingGPUs = 32 * 8
	workload := lyra.GenerateTrace(traceCfg)
	// Make every job elastic so the schedulers' elasticity handling is
	// what differs (the 100% point of Figures 14-15).
	lyra.SetElasticFraction(workload, 1.0, 99)
	clusterCfg := lyra.ClusterConfig{TrainingServers: 32, InferenceServers: 1}

	fmt.Printf("\nElastic schedulers on an all-elastic %d-job workload (no loaning):\n", len(workload.Jobs))
	fmt.Printf("%-10s %12s %12s %12s\n", "scheme", "q_mean(s)", "jct_mean(s)", "scaling_ops")
	for _, kind := range []lyra.SchedulerKind{lyra.SchedFIFO, lyra.SchedGandiva, lyra.SchedAFS, lyra.SchedPollux, lyra.SchedLyra} {
		cfg := lyra.DefaultConfig()
		cfg.Cluster = clusterCfg
		cfg.Scheduler = kind
		cfg.Loaning = false
		if kind == lyra.SchedPollux {
			cfg.Scaling.TunedGain = 0.08
		}
		if kind == lyra.SchedFIFO {
			cfg.Elastic = false
		}
		rep, err := lyra.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.0f %12.0f %12d\n", kind, rep.Queue.Mean, rep.JCT.Mean, rep.ScalingOps)
	}
}
