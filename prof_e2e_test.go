package lyra_test

import (
	"bytes"
	"testing"

	"lyra"
	"lyra/internal/prof"
)

// TestProfilingDoesNotPerturbEvents is the separation contract of the span
// profiler (DESIGN.md §12): the obs event stream records simulated-time
// decisions and is pinned byte for byte by golden tests, while prof spans
// measure wall time. Running the same audited scenario with profiling off
// and on must therefore produce byte-identical event streams — a single
// decision shifted by the instrumentation would diverge at least one line.
func TestProfilingDoesNotPerturbEvents(t *testing.T) {
	run := func(p *prof.Profiler) *lyra.Report {
		tcfg := lyra.DefaultTraceConfig(7)
		tcfg.Days = 1
		tcfg.TrainingGPUs = 64
		tr := lyra.GenerateTrace(tcfg)

		cfg := lyra.DefaultConfig()
		cfg.Cluster = lyra.ClusterConfig{TrainingServers: 8, InferenceServers: 8}
		cfg.Events = true
		cfg.SchedInterval = 300
		cfg.Audit = true

		rep, err := lyra.RunProfiled(cfg, tr, p)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return rep
	}

	plain := run(nil)
	if plain.Prof != nil {
		t.Fatal("unprofiled run carries a Prof report")
	}
	profiled := run(prof.New(nil))
	if !bytes.Equal(plain.Events, profiled.Events) {
		t.Fatalf("event streams diverge under profiling: %d vs %d bytes",
			len(plain.Events), len(profiled.Events))
	}

	// The profiled run's self-timing report must attribute the simulation's
	// known layers: the three top-level Run stages, the per-kind engine
	// spans under "sim", the Lyra scheduler phases under the scheduler
	// epoch, and the audit span (Audit is on in this scenario).
	r := profiled.Prof
	if r == nil {
		t.Fatal("profiled run has no Prof report")
	}
	for _, path := range [][]string{
		{"prepare"},
		{"sim"},
		{"report"},
		{"sim", "epoch.sched"},
		{"sim", "epoch.orch"},
		{"sim", "arrival"},
		{"sim", "finish"},
		{"sim", "metrics"},
		{"sim", "epoch.sched", "phase1"},
		{"sim", "epoch.sched", "phase1.hetero"},
		{"sim", "epoch.sched", "phase2"},
		{"sim", "epoch.sched", "phase2", "phase2.mckp"},
		{"sim", "epoch.sched", "phase2", "phase2.apply"},
		{"sim", "epoch.sched", "audit"},
	} {
		n := r.Find(path...)
		if n == nil {
			t.Errorf("report missing phase %v", path)
			continue
		}
		if n.Count <= 0 || n.TotalNS < 0 {
			t.Errorf("phase %v has count=%d total=%d", path, n.Count, n.TotalNS)
		}
	}

	// Wall-clock coverage: the three Run stages are back to back, so nearly
	// the whole profiled window must be attributed to named phases.
	if a := r.Attributed(); a < 90 {
		t.Errorf("attributed = %.1f%%, want >= 90%%", a)
	}
}
